package ftfft_test

import (
	"bytes"
	"context"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"ftfft"
	"ftfft/internal/workload"
)

var (
	serveBinOnce sync.Once
	serveBin     string
	serveBinErr  error
)

func buildServeBinary(t *testing.T) string {
	t.Helper()
	serveBinOnce.Do(func() {
		dir, err := os.MkdirTemp("", "ftfft-serve-bin")
		if err != nil {
			serveBinErr = err
			return
		}
		serveBin = filepath.Join(dir, "ftserve")
		out, err := exec.Command("go", "build", "-o", serveBin, "./cmd/ftserve").CombinedOutput()
		if err != nil {
			serveBinErr = err
			t.Logf("go build ./cmd/ftserve: %v\n%s", err, out)
		}
	})
	if serveBinErr != nil {
		t.Skipf("cannot build cmd/ftserve binary: %v", serveBinErr)
	}
	return serveBin
}

// TestServeCLISmoke is the deployment smoke test: the real ftserve binary
// serves concurrent library clients over a Unix socket — clean requests,
// a wire-corrupted request the server repairs, an uncorrectable one it
// rejects — then drains cleanly on SIGTERM with a zero exit status.
func TestServeCLISmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	bin := buildServeBinary(t)
	sock := filepath.Join(t.TempDir(), "ftserve.sock")

	var output bytes.Buffer
	srv := exec.Command(bin, "-listen", sock, "-plan-cache", "8", "-drain-timeout", "20s")
	srv.Stdout = &output
	srv.Stderr = &output
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Process.Kill()

	// The service is up once a handshake completes.
	var c *ftfft.Client
	var err error
	for i := 0; ; i++ {
		c, err = ftfft.Dial("unix", sock)
		if err == nil {
			break
		}
		if i > 500 {
			t.Fatalf("ftserve did not come up: %v\n%s", err, output.Bytes())
		}
		time.Sleep(10 * time.Millisecond)
	}
	defer c.Close()

	ctx := context.Background()
	const n = 1 << 12
	x := workload.Uniform(3, n)

	// Concurrent clients with mixed schemes against the spawned binary.
	var wg sync.WaitGroup
	cerrs := make(chan error, 4)
	for k := 0; k < 4; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			cc, err := ftfft.Dial("unix", sock)
			if err != nil {
				cerrs <- err
				return
			}
			defer cc.Close()
			prot := []ftfft.Protection{ftfft.None, ftfft.OnlineABFT, ftfft.OnlineABFTMemory}[k%3]
			dst := make([]complex128, n)
			for r := 0; r < 4; r++ {
				if _, err := cc.Forward(ctx, dst, x, ftfft.WithProtection(prot)); err != nil {
					cerrs <- err
					return
				}
			}
		}(k)
	}
	wg.Wait()
	close(cerrs)
	for err := range cerrs {
		t.Fatalf("concurrent client against ftserve: %v\n%s", err, output.Bytes())
	}

	// Repair-or-reject against the real binary.
	dst := make([]complex128, n)
	c.InjectWireFaults(func(payload []byte) {
		payload[16] ^= 0x40
		payload[23] ^= 0x01
	})
	rep, err := c.Forward(ctx, dst, x, ftfft.WithProtection(ftfft.OnlineABFTMemory))
	if err != nil || rep.MemCorrections != 1 {
		t.Fatalf("wire repair through ftserve: err=%v rep=%+v", err, rep)
	}
	c.InjectWireFaults(func(payload []byte) {
		for _, e := range []int{1, 1000, 3000} {
			payload[e*16] ^= 0x40
			payload[e*16+7] ^= 0x01
		}
	})
	if _, err := c.Forward(ctx, dst, x, ftfft.WithProtection(ftfft.OnlineABFTMemory)); !errors.Is(err, ftfft.ErrUncorrectable) {
		t.Fatalf("uncorrectable through ftserve: err=%v", err)
	}
	c.InjectWireFaults(nil)
	if _, err := c.Forward(ctx, dst, x); err != nil {
		t.Fatalf("clean request after reject: %v", err)
	}
	c.Close()

	// SIGTERM: graceful drain, zero exit.
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ftserve exit after SIGTERM: %v\n%s", err, output.Bytes())
		}
	case <-time.After(30 * time.Second):
		srv.Process.Kill()
		t.Fatalf("ftserve did not drain after SIGTERM\n%s", output.Bytes())
	}
	if !bytes.Contains(output.Bytes(), []byte("drained cleanly")) {
		t.Fatalf("ftserve output missing drain confirmation:\n%s", output.Bytes())
	}
	// New connections are refused once drained.
	if _, err := ftfft.Dial("unix", sock); err == nil {
		t.Fatal("dial succeeded after server drained")
	}
}
