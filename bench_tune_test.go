package ftfft_test

// bench_tune_test.go is the autotuner's A-B trajectory: each BenchmarkTuned*
// family runs the same transform under the estimate heuristics and under a
// freshly measured wisdom table, one sub-benchmark per mode, so the dated
// JSON snapshots (bench.sh --tuned) record the measured-vs-estimate delta
// per knob without hand-built comparisons. BenchmarkTunedPlanBuild pins the
// plan-build cost contract: a wisdom hit must build within noise of the
// estimate path (the measurement sweeps run only on a table miss).

import (
	"context"
	"testing"

	"ftfft"
	"ftfft/internal/workload"
)

// benchTunedForward benches steady-state Forward throughput for one tuning
// mode. Measured mode pays its sweeps at plan build, outside the timer; the
// wisdom table is reset first so each run measures from scratch rather than
// inheriting an earlier sub-benchmark's winners.
func benchTunedForward(b *testing.B, n int, mode ftfft.TuningMode, opts ...ftfft.Option) {
	b.Helper()
	ftfft.ForgetWisdom()
	opts = append([]ftfft.Option{ftfft.WithTuning(mode)}, opts...)
	tr, err := ftfft.New(n, opts...)
	if err != nil {
		b.Fatal(err)
	}
	src := workload.Uniform(int64(n), n)
	dst := make([]complex128, n)
	ctx := context.Background()
	b.SetBytes(int64(16 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Forward(ctx, dst, src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTunedBluestein4099 is the conv-length knob A-B on the recorded
// +11% heuristic miss: n = 4099 is prime, so the whole transform is one
// Bluestein leaf and the convolution length dominates.
func BenchmarkTunedBluestein4099(b *testing.B) {
	b.Run("estimate", func(b *testing.B) { benchTunedForward(b, 4099, ftfft.TuneEstimate) })
	b.Run("measured", func(b *testing.B) { benchTunedForward(b, 4099, ftfft.TuneMeasured) })
}

// BenchmarkTunedKernel4096 is the flat-vs-recursive engine knob A-B on a
// protected power of two, where both engines are legal candidates.
func BenchmarkTunedKernel4096(b *testing.B) {
	opts := []ftfft.Option{ftfft.WithProtection(ftfft.OnlineABFTMemory)}
	b.Run("estimate", func(b *testing.B) { benchTunedForward(b, 4096, ftfft.TuneEstimate, opts...) })
	b.Run("measured", func(b *testing.B) { benchTunedForward(b, 4096, ftfft.TuneMeasured, opts...) })
}

// BenchmarkTunedTile256x256 is the nd tile knob A-B: the tuner sweeps the
// same ladder as BenchmarkTileSize (nd.TileLadder) and retiles the plan to
// the measured winner.
func BenchmarkTunedTile256x256(b *testing.B) {
	opts := []ftfft.Option{ftfft.WithDims(256, 256)}
	b.Run("estimate", func(b *testing.B) { benchTunedForward(b, 256*256, ftfft.TuneEstimate, opts...) })
	b.Run("measured", func(b *testing.B) { benchTunedForward(b, 256*256, ftfft.TuneMeasured, opts...) })
}

// BenchmarkTunedPlanBuild pins that a wisdom hit costs plan-build time
// within noise of the estimate path: after one measured build populates the
// table, every further measured build is lookups plus the same construction
// work — the sweeps never re-run on a hit.
func BenchmarkTunedPlanBuild(b *testing.B) {
	const n = 4099
	b.Run("estimate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ftfft.New(n); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("wisdom-hit", func(b *testing.B) {
		ftfft.ForgetWisdom()
		if _, err := ftfft.New(n, ftfft.WithTuning(ftfft.TuneMeasured)); err != nil {
			b.Fatal(err) // first build measures and records
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ftfft.New(n, ftfft.WithTuning(ftfft.TuneMeasured)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
