package ftfft_test

import (
	"bytes"
	"flag"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

var updateAPI = flag.Bool("update-api", false, "rewrite testdata/api.txt from the current public surface")

var spaces = regexp.MustCompile(`\s+`)

// TestPublicAPIGolden pins the package's exported surface to
// testdata/api.txt, so public-API changes are deliberate: any drift fails
// this test until the golden file is regenerated with
//
//	go test -run TestPublicAPIGolden -update-api .
//
// and the diff reviewed like any other API change (a lightweight stand-in
// for apidiff).
func TestPublicAPIGolden(t *testing.T) {
	got := strings.Join(publicSurface(t), "\n") + "\n"
	golden := filepath.Join("testdata", "api.txt")
	if *updateAPI {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden API file (regenerate with -update-api): %v", err)
	}
	if got != string(want) {
		t.Errorf("public API surface drifted from %s.\nRegenerate with -update-api and review the diff.\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}
}

// publicSurface parses the root package and renders one normalized line per
// exported declaration (functions, methods on exported types, and full
// type/const/var specs).
func publicSurface(t *testing.T) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["ftfft"]
	if !ok {
		t.Fatal("package ftfft not found")
	}
	var lines []string
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || !exportedRecv(d.Recv) {
					continue
				}
				lines = append(lines, render(t, fset, &ast.FuncDecl{Recv: d.Recv, Name: d.Name, Type: d.Type}))
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() {
							lines = append(lines, render(t, fset, &ast.GenDecl{Tok: d.Tok, Specs: []ast.Spec{s}}))
						}
					case *ast.ValueSpec:
						for _, name := range s.Names {
							if name.IsExported() {
								entry := d.Tok.String() + " " + name.Name
								if s.Type != nil {
									entry += " " + render(t, fset, s.Type)
								}
								lines = append(lines, entry)
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(lines)
	return lines
}

// exportedRecv reports whether a method's receiver names an exported type
// (nil receivers — plain functions — count as exported).
func exportedRecv(recv *ast.FieldList) bool {
	if recv == nil {
		return true
	}
	typ := recv.List[0].Type
	if star, ok := typ.(*ast.StarExpr); ok {
		typ = star.X
	}
	id, ok := typ.(*ast.Ident)
	return ok && id.IsExported()
}

// render prints a stripped AST node as one whitespace-normalized line.
func render(t *testing.T, fset *token.FileSet, node ast.Node) string {
	t.Helper()
	stripComments(node)
	stripUnexportedFields(node)
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, node); err != nil {
		t.Fatal(err)
	}
	return spaces.ReplaceAllString(buf.String(), " ")
}

// stripUnexportedFields drops unexported struct fields: they are not part
// of the public surface and would churn the golden file on internal
// refactors.
func stripUnexportedFields(node ast.Node) {
	ast.Inspect(node, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok || st.Fields == nil {
			return true
		}
		kept := st.Fields.List[:0]
		for _, f := range st.Fields.List {
			names := f.Names[:0]
			for _, name := range f.Names {
				if name.IsExported() {
					names = append(names, name)
				}
			}
			if len(f.Names) == 0 || len(names) > 0 {
				f.Names = names
				kept = append(kept, f)
			}
		}
		st.Fields.List = kept
		return true
	})
}

// stripComments removes doc comments so the golden file tracks signatures,
// not prose.
func stripComments(node ast.Node) {
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Field:
			n.Doc, n.Comment = nil, nil
		case *ast.TypeSpec:
			n.Doc, n.Comment = nil, nil
		case *ast.ValueSpec:
			n.Doc, n.Comment = nil, nil
		case *ast.GenDecl:
			n.Doc = nil
		case *ast.FuncDecl:
			n.Doc = nil
		}
		return true
	})
}
