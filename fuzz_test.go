package ftfft_test

import (
	"testing"

	"ftfft"
	"ftfft/internal/dft"
)

// fuzzSizes are composite transform sizes (the online two-layer scheme needs
// a composite n), spanning power-of-two, mixed-radix, and Bluestein-adjacent
// geometries while staying small enough for the O(n²) reference DFT.
var fuzzSizes = []int{8, 16, 60, 64, 100, 128, 240, 256}

// fuzzProtections covers every protection level.
var fuzzProtections = []ftfft.Protection{
	ftfft.None,
	ftfft.OfflineABFT,
	ftfft.OfflineABFTNaive,
	ftfft.OnlineABFT,
	ftfft.OnlineABFTNaive,
	ftfft.OnlineABFTMemory,
	ftfft.OnlineABFTMemoryNaive,
}

// FuzzForwardInverse cross-checks the planned, protected transform against
// the O(n²) reference DFT (internal/dft) and the Forward∘Inverse round trip
// against the input, across sizes and protection levels, on fuzzer-chosen
// data. Any divergence means the planner, a protection scheme, or the
// executor dispatch corrupted the arithmetic.
func FuzzForwardInverse(f *testing.F) {
	f.Add(uint8(1), uint8(0), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint8(3), uint8(5), []byte{0xff, 0x80, 0x01, 0x7f, 0x00, 0x10})
	f.Add(uint8(7), uint8(3), []byte{9, 9, 9, 9})
	f.Add(uint8(4), uint8(6), []byte{})
	f.Fuzz(func(t *testing.T, sizeSel, protSel uint8, raw []byte) {
		n := fuzzSizes[int(sizeSel)%len(fuzzSizes)]
		prot := fuzzProtections[int(protSel)%len(fuzzProtections)]
		src := make([]complex128, n)
		for i := range src {
			var re, im int8
			if 2*i < len(raw) {
				re = int8(raw[2*i])
			}
			if 2*i+1 < len(raw) {
				im = int8(raw[2*i+1])
			}
			src[i] = complex(float64(re)/8, float64(im)/8)
		}
		tr, err := ftfft.New(n, ftfft.WithProtection(prot))
		if err != nil {
			t.Skipf("size %d rejected under %v: %v", n, prot, err)
		}
		want := dft.Transform(src)
		got := make([]complex128, n)
		rep, err := tr.Forward(bg, got, append([]complex128(nil), src...))
		if err != nil {
			t.Fatalf("n=%d prot=%v: Forward: %v (%+v)", n, prot, err, rep)
		}
		if !rep.Clean() {
			t.Fatalf("n=%d prot=%v: fault activity on a fault-free run: %+v", n, prot, rep)
		}
		tol := 1e-9 * float64(n) * (1 + maxAbs(want))
		if d := maxAbsDiff(got, want); d > tol {
			t.Fatalf("n=%d prot=%v: forward diverged from reference DFT by %g (tol %g)", n, prot, d, tol)
		}
		back := make([]complex128, n)
		if _, err := tr.Inverse(bg, back, got); err != nil {
			t.Fatalf("n=%d prot=%v: Inverse: %v", n, prot, err)
		}
		tol = 1e-9 * float64(n) * (1 + maxAbs(src))
		if d := maxAbsDiff(back, src); d > tol {
			t.Fatalf("n=%d prot=%v: round trip diverged by %g (tol %g)", n, prot, d, tol)
		}
	})
}
