package ftfft_test

import (
	"testing"

	"ftfft"
	"ftfft/internal/dft"
)

// fuzzSizes are composite transform sizes (the online two-layer scheme needs
// a composite n), spanning power-of-two, mixed-radix, and Bluestein-adjacent
// geometries while staying small enough for the O(n²) reference DFT.
var fuzzSizes = []int{8, 16, 60, 64, 100, 128, 240, 256}

// fuzzProtections covers every protection level.
var fuzzProtections = []ftfft.Protection{
	ftfft.None,
	ftfft.OfflineABFT,
	ftfft.OfflineABFTNaive,
	ftfft.OnlineABFT,
	ftfft.OnlineABFTNaive,
	ftfft.OnlineABFTMemory,
	ftfft.OnlineABFTMemoryNaive,
}

// fuzzDims derives a deterministic shape split of n from the fuzzer's
// selector: nil (stay 1-D), a 2-D divisor split, or a 3-D split when the
// remainder factors again. Every returned shape satisfies product == n, so
// the fuzzer explores the geometry axis of the option space freely.
func fuzzDims(n int, dimSel uint8) []int {
	if dimSel&3 == 0 {
		return nil // 1-D
	}
	var divs []int
	for d := 2; d <= n/2; d++ {
		if n%d == 0 {
			divs = append(divs, d)
		}
	}
	if len(divs) == 0 {
		return nil
	}
	d := divs[int(dimSel/4)%len(divs)]
	rest := n / d
	if dimSel&2 != 0 {
		for e := 2; e <= rest/2; e++ {
			if rest%e == 0 {
				return []int{d, e, rest / e}
			}
		}
	}
	return []int{d, rest}
}

// FuzzForwardInverse cross-checks the planned, protected transform against
// the O(n²) reference DFT (internal/dft, applied axis-wise for N-D shapes)
// and the Forward∘Inverse round trip against the input, across sizes, shape
// splits and protection levels, on fuzzer-chosen data. Any divergence means
// the planner, a protection scheme, the N-D pass schedule, or the executor
// dispatch corrupted the arithmetic.
func FuzzForwardInverse(f *testing.F) {
	f.Add(uint8(1), uint8(0), uint8(0), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint8(3), uint8(5), uint8(1), []byte{0xff, 0x80, 0x01, 0x7f, 0x00, 0x10})
	f.Add(uint8(7), uint8(3), uint8(7), []byte{9, 9, 9, 9})
	f.Add(uint8(4), uint8(6), uint8(14), []byte{})
	f.Add(uint8(5), uint8(5), uint8(23), []byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, sizeSel, protSel, dimSel uint8, raw []byte) {
		n := fuzzSizes[int(sizeSel)%len(fuzzSizes)]
		prot := fuzzProtections[int(protSel)%len(fuzzProtections)]
		dims := fuzzDims(n, dimSel)
		src := make([]complex128, n)
		for i := range src {
			var re, im int8
			if 2*i < len(raw) {
				re = int8(raw[2*i])
			}
			if 2*i+1 < len(raw) {
				im = int8(raw[2*i+1])
			}
			src[i] = complex(float64(re)/8, float64(im)/8)
		}
		opts := []ftfft.Option{ftfft.WithProtection(prot)}
		if dims != nil {
			opts = append(opts, ftfft.WithDims(dims...))
		}
		tr, err := ftfft.New(n, opts...)
		if err != nil {
			t.Skipf("n=%d dims=%v rejected under %v: %v", n, dims, prot, err)
		}
		var want []complex128
		if dims == nil {
			want = dft.Transform(src)
		} else {
			want = ndReferenceDFT(src, dims)
		}
		got := make([]complex128, n)
		rep, err := tr.Forward(bg, got, append([]complex128(nil), src...))
		if err != nil {
			t.Fatalf("n=%d dims=%v prot=%v: Forward: %v (%+v)", n, dims, prot, err, rep)
		}
		if !rep.Clean() {
			t.Fatalf("n=%d dims=%v prot=%v: fault activity on a fault-free run: %+v", n, dims, prot, rep)
		}
		tol := 1e-9 * float64(n) * (1 + maxAbs(want))
		if d := maxAbsDiff(got, want); d > tol {
			t.Fatalf("n=%d dims=%v prot=%v: forward diverged from reference DFT by %g (tol %g)", n, dims, prot, d, tol)
		}
		back := make([]complex128, n)
		if _, err := tr.Inverse(bg, back, got); err != nil {
			t.Fatalf("n=%d dims=%v prot=%v: Inverse: %v", n, dims, prot, err)
		}
		tol = 1e-9 * float64(n) * (1 + maxAbs(src))
		if d := maxAbsDiff(back, src); d > tol {
			t.Fatalf("n=%d dims=%v prot=%v: round trip diverged by %g (tol %g)", n, dims, prot, d, tol)
		}
	})
}

// FuzzRealForwardInverse is the real-input counterpart of FuzzForwardInverse:
// the packed half-length RFFT against the real reference DFT and an
// IRFFT∘RFFT round trip, across even sizes and protection levels, on
// fuzzer-chosen samples.
func FuzzRealForwardInverse(f *testing.F) {
	f.Add(uint8(1), uint8(0), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint8(3), uint8(5), []byte{0xff, 0x80, 0x01, 0x7f})
	f.Add(uint8(5), uint8(3), []byte{9, 9, 9})
	f.Add(uint8(7), uint8(6), []byte{})
	f.Fuzz(func(t *testing.T, sizeSel, protSel uint8, raw []byte) {
		n := fuzzSizes[int(sizeSel)%len(fuzzSizes)]
		if n%2 != 0 {
			n++
		}
		prot := fuzzProtections[int(protSel)%len(fuzzProtections)]
		src := make([]float64, n)
		for i := range src {
			var v int8
			if i < len(raw) {
				v = int8(raw[i])
			}
			src[i] = float64(v) / 8
		}
		tr, err := ftfft.NewReal(n, ftfft.WithProtection(prot))
		if err != nil {
			t.Skipf("n=%d rejected under %v: %v", n, prot, err)
		}
		want := dft.RealTransform(src)
		got := make([]complex128, tr.SpectrumLen())
		rep, err := tr.Forward(bg, got, src)
		if err != nil {
			t.Fatalf("n=%d prot=%v: Forward: %v (%+v)", n, prot, err, rep)
		}
		if !rep.Clean() {
			t.Fatalf("n=%d prot=%v: fault activity on a fault-free run: %+v", n, prot, rep)
		}
		tol := 1e-9 * float64(n) * (1 + maxAbs(want))
		if d := maxAbsDiff(got, want); d > tol {
			t.Fatalf("n=%d prot=%v: spectrum diverged from reference by %g (tol %g)", n, prot, d, tol)
		}
		back := make([]float64, n)
		if _, err := tr.Inverse(bg, back, got); err != nil {
			t.Fatalf("n=%d prot=%v: Inverse: %v", n, prot, err)
		}
		for i := range src {
			if d := back[i] - src[i]; d > tol || d < -tol {
				t.Fatalf("n=%d prot=%v: round trip sample %d off by %g (tol %g)", n, prot, i, d, tol)
			}
		}
	})
}
