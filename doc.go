// Package ftfft is a soft-error-resilient FFT library: a from-scratch Go
// reproduction of "Correcting Soft Errors Online in Fast Fourier Transform"
// (Liang et al., SC '17), the paper that introduced the first *online*
// algorithm-based fault tolerance (ABFT) scheme for FFT and the FT-FFTW
// implementation.
//
// The library computes forward and inverse DFTs of arbitrary size while
// detecting — and transparently correcting — soft errors that strike either
// the arithmetic (logic-unit faults) or data at rest (memory bit flips),
// at a few-percent overhead instead of the ≥100% of double/triple modular
// redundancy:
//
//	plan, _ := ftfft.NewPlan(1<<20, ftfft.Options{Protection: ftfft.OnlineABFTMemory})
//	report, err := plan.Forward(dst, src)   // verified output, or err
//
// Protection levels range from None (a plain planned FFT, the library's
// FFTW stand-in) through the paper's offline scheme (verify once at the
// end, restart on error) to the online two-layer scheme (verify every
// sub-transform as it completes, recover in O(√N·log√N)), each in a naive
// and an optimized variant, with or without memory-fault protection.
// ParallelPlan runs the six-step in-place distributed algorithm of §5 on a
// simulated multi-rank communicator with checksummed transposes.
//
// Fault injection is a first-class citizen (the Injector option), so the
// resilience claims are testable rather than aspirational; see the examples
// and the experiments harness (cmd/ftexperiments), which regenerates every
// table and figure of the paper's evaluation.
//
// # Plan once, execute many
//
// Like FFTW, plans front-load all derived state: FFT sub-plans, twiddle
// tables, checksum weight vectors, the message-passing world and every
// per-rank workspace buffer are built at NewPlan/NewParallelPlan time and
// reused by every transform. Steady-state sequential transforms perform
// zero allocations; parallel transforms allocate only the O(ranks) cost of
// spawning rank goroutines.
//
// Plans are safe for concurrent use by multiple goroutines. Workspaces are
// per-goroutine: a parallel plan keeps a pool of execution contexts (one
// mpi world plus one workspace per rank), and each in-flight Transform
// draws its own, so concurrent calls on one plan never share mutable state.
// A context is returned to the pool only after a clean transform; contexts
// that observed an uncorrectable fault are discarded rather than reused.
package ftfft
