// Package ftfft is a soft-error-resilient FFT library: a from-scratch Go
// reproduction of "Correcting Soft Errors Online in Fast Fourier Transform"
// (Liang et al., SC '17), the paper that introduced the first *online*
// algorithm-based fault tolerance (ABFT) scheme for FFT and the FT-FFTW
// implementation.
//
// The library computes forward and inverse DFTs of arbitrary size while
// detecting — and transparently correcting — soft errors that strike either
// the arithmetic (logic-unit faults) or data at rest (memory bit flips),
// at a few-percent overhead instead of the ≥100% of double/triple modular
// redundancy.
//
// # One planner, one executor
//
// New is the single constructor: protection, geometry and parallelism
// compose as functional options, and every composition yields the same
// Transform interface —
//
//	tr, _ := ftfft.New(1<<20, ftfft.WithProtection(ftfft.OnlineABFTMemory))
//	report, err := tr.Forward(ctx, dst, src)    // verified output, or err
//
//	par, _ := ftfft.New(1<<18, ftfft.WithRanks(8),
//	    ftfft.WithProtection(ftfft.OnlineABFTMemory))  // §5 six-step, opt-FT-FFTW
//	img, _ := ftfft.New(rows*cols, ftfft.WithShape(rows, cols),
//	    ftfft.WithRanks(4))                            // 2-D over a 4-worker pool
//	vol, _ := ftfft.New(64*64*64, ftfft.WithDims(64, 64, 64),
//	    ftfft.WithProtection(ftfft.OnlineABFTMemory))  // protected 3-D volume
//
// Forward, Inverse and ForwardBatch run under the same protection: the
// inverse path uses the conjugation identity IDFT(x) = conj(DFT(conj(x)))/N
// so the entire ABFT machinery guards it too, and batches reuse the plan's
// pooled execution contexts with bit-identical results. The deprecated
// NewPlan / NewParallelPlan / NewPlan2D constructors remain as thin shims
// over the same executors.
//
// # Protection levels
//
// Protection ranges from None (a plain planned FFT, the library's FFTW
// stand-in) through the paper's offline scheme (verify once at the end,
// restart on error) to the online two-layer scheme (verify every
// sub-transform as it completes, recover in O(√N·log√N)), each in a naive
// and an optimized variant, with or without memory-fault protection.
// WithRanks runs the six-step in-place distributed algorithm of §5 on a
// simulated multi-rank communicator with checksummed transposes.
//
// Fault injection is a first-class citizen (WithInjector), so the
// resilience claims are testable rather than aspirational; see the examples
// and the experiments harness (cmd/ftexperiments), which regenerates every
// table and figure of the paper's evaluation.
//
// # Kernel architecture
//
// Beneath every protection scheme sits the planned FFT engine
// (internal/fft). Power-of-two sizes run a flat, iterative, cache-friendly
// kernel: one precomputed bit-reversal permutation, then radix-4
// decimation-in-time butterfly stages (with a single radix-2 fixup stage
// when log₂ n is odd) over per-stage twiddle tables, with no recursion and
// no per-call lookup. All other sizes run a recursive mixed-radix
// Cooley-Tukey walk with specialized butterflies for small radices, and
// sizes with prime factors beyond the butterfly set switch to Bluestein's
// chirp-z algorithm — whose convolution length is chosen by a stage-cost
// model over the sizes the kernels handle cheaply, not pinned to the next
// power of two. The immutable per-(size, direction) tables are served from a
// bounded process-wide cache, so many plans over a handful of sizes pay each
// table build once while process memory stays bounded. Kernel choice is made
// at plan time and never changes arithmetic guarantees: in-place and
// out-of-place execution of the flat kernel are bit-identical, and every
// kernel is validated against the O(n²) reference DFT.
//
// # Real-input transforms
//
// NewReal plans transforms of real-valued samples through the packed
// half-length trick: the n reals become an (n/2)-point complex vector
// z_t = x_{2t} + i·x_{2t+1}, ONE protected complex transform of half the
// length runs under the configured scheme, and an O(n) untangling recovers
// the stored half spectrum X_0..X_{n/2} (the upper half follows from
// conjugate symmetry and is not stored) —
//
//	rt, _ := ftfft.NewReal(1<<20, ftfft.WithProtection(ftfft.OnlineABFTMemory))
//	spec := make([]complex128, rt.SpectrumLen())       // n/2 + 1 bins
//	report, err := rt.Forward(ctx, spec, samples)      // RFFT
//	_, err = rt.Inverse(ctx, samples2, spec)           // IRFFT, 1/n scaled
//
// This roughly halves the work and memory traffic of transforming the same
// samples as zero-imaginary complex data. The inner complex transform
// carries the scheme's full ABFT machinery — every fault site is visited,
// verified and repaired exactly as in the complex path — and the
// deterministic pack/untangle steps add no new fault sites. Protection and
// tuning options compose as with New; geometry and parallelism options do
// not apply to the 1-D real path and are rejected at plan time.
//
// # N-dimensional transforms
//
// WithDims plans an N-D transform as a sequence of protected 1-D axis
// passes — the direct generalization of the paper's row-column
// decomposition, over one geometry engine for every rank k ≥ 1. Passes run
// innermost (contiguous) axis first; because every line of every pass runs
// under the configured protection, the online scheme's timely-detection
// property — an error is caught and repaired before the next pass consumes
// it — holds between axis passes exactly as it holds between the two ABFT
// layers inside each 1-D transform. Length-1 axes are identity passes and
// are skipped.
//
// Non-contiguous passes execute the protected schemes directly on strided
// lines (no per-line gather/scatter round trip), bit-identical to the
// gathered equivalent, and group memory-adjacent lines into cache-sized
// tiles; each tile is one bounded-executor task, so WithRanks(p) fans a
// pass out p wide without splitting adjacent lines across workers. Tiling,
// worker count and executor choice are pure scheduling: outputs are
// bit-identical across all of them, and bit-identical to the nested
// axis-wise reference. Inverse applies the conjugation identity per line,
// keeping every pass protected. Shape() remains as the 2-D compatibility
// view of Dims().
//
// # Distributed execution
//
// The six-step parallel transform is transport-pure: a rank body touches
// only its own preallocated workspace and its communicator endpoints, with
// input distributed by an explicit root-rank scatter and output collected by
// a gather (both checksum-protected). Which wire carries the messages is an
// option:
//
//	hub, _ := ftfft.ListenHub("unix", "/tmp/fft.sock", 4)   // rank 0 = this process
//	tr, _ := ftfft.New(1<<20, ftfft.WithRanks(4),
//	    ftfft.WithProtection(ftfft.OnlineABFTMemory),
//	    ftfft.WithTransport(hub))            // blocks until 3 workers dial in
//	defer hub.Close()                        // workers exit cleanly
//
// and each worker process (one rank apiece) is just
//
//	ftfft.ServeWorker(ctx, "unix", "/tmp/fft.sock")          // or: ftfft -worker -connect …
//
// Workers need no configuration: the connection handshake assigns the rank
// and ships the plan geometry and protection parameters, so every process
// provably runs the same scheme. On the wire, messages travel through a
// framed byte codec — tag/src/dst/length header, optional §5 block checksum
// pair, then the payload as little-endian IEEE-754 bit patterns — so a
// multi-process run is bit-for-bit identical to the in-process run, and the
// block checksums repair payloads corrupted on the wire itself (including
// below the codec: Hub.InjectWireFaults flips serialized bytes in flight).
// A rank failure or lost connection poisons every process's world instead of
// deadlocking it; the failed Transform's wire is then retired and later
// calls fail fast.
//
// Four wires carry the identical frames; they differ only in reach and in
// the cost of moving bytes. The default in-process chan wire grants the
// zero-copy scatter/gather fast path; MessageOnlyTransport(p) masks it to
// price (and pin) the explicit message path; ListenHub("unix"/"tcp", …)
// crosses process — and with tcp, host — boundaries through sockets, worker↔
// worker frames relaying through the hub; ListenShmHub(path, p) is the
// same-host wire: a memory-mapped ring file of p×p single-producer
// single-consumer rings, where a send serializes its frame directly into
// the destination ring and publishes it with one atomic store — no
// syscalls, no kernel copies, no hub relay — and workers dial by path with
// ServeWorker(ctx, "shm", path).
//
// ListenMeshHub upgrades the socket star to a mesh: the handshake hands
// each worker its peers' listen addresses, every worker pair establishes
// one direct connection (lower rank dials higher), and worker↔worker
// frames — the transpose exchanges at the heart of the six-step algorithm —
// go point-to-point instead of relaying through the hub:
//
//	    star                         mesh
//	      w1                          w1
//	     /                           /  |
//	hub — w2                   hub — w2 |
//	     \                           \  | \
//	      w3                          w3-'
//	w↔w frames: 2 hops         w↔w frames: direct; hub keeps
//	through the hub            scatter/gather, abort, goodbye
//
// The mesh is an optimization, never a requirement: peer dials are
// deadline-bound, and an unreachable or lost peer — or a worker started
// with DialWorkerNoMesh / -no-mesh — logs the reason and degrades that
// pair to the hub relay without aborting the world. WireStats reports
// frames and bytes moved direct vs relayed, live peer connections, and the
// deepest epoch overlap observed.
//
// ForwardBatch over any transport is epoch-pipelined: each data frame's
// header carries the epoch of the batch item it belongs to, ranks match
// frames to per-epoch mailboxes, and a ring of pooled per-epoch contexts
// keeps up to four transforms in flight over one world, windowed by the
// root executor's reserve backpressure (WithWorkers sizes the window).
// Results are reaped in order and are bit-identical to the unbatched loop
// on every wire, clean or under injected faults.
//
// Protected payloads carry their §5 checksum pair without a separate
// generation pass: the pair accumulates inside the serialization loop on
// send and inside the decode loop on receive (fused sweeps), and the fusion
// is bit-identical to running checksum generation as its own pass — same
// element order, same rounding — on the rank wire and the service wire
// alike.
//
// The shared-memory fast-path guarantee: without WithTransport, ranks run
// in-process over a channel wire that grants the SharedMemory capability,
// and rank bodies copy their slices of the caller's arrays directly instead
// of exchanging scatter/gather messages. The fast path is selected by
// transport capability, never assumed by the algorithm, and its outputs are
// bit-identical to the message path (MessageOnlyTransport masks the
// capability to prove exactly that).
//
// # Serving
//
// ListenServe runs the library as a long-lived spectral server: clients
// submit individual transforms over the framed byte codec and the server
// multiplexes them onto a bounded LRU plan cache (size × dims × protection ×
// real/complex) executed through the shared bounded pool, so bursts degrade
// by queueing rather than goroutine or plan-build explosion —
//
//	srv, _ := ftfft.ListenServe("unix", sock, ftfft.ServerConfig{PlanCache: 32})
//	defer srv.Shutdown(ctx)               // stop accepting, drain, close
//
//	c, _ := ftfft.Dial("unix", sock)      // safe for concurrent use; requests
//	defer c.Close()                       // pipeline over one connection
//	report, err := c.Forward(ctx, dst, src,
//	    ftfft.WithProtection(ftfft.OnlineABFTMemory))
//
// The client carries only what to compute — protection and geometry;
// execution options (WithRanks, WithWorkers, WithTransport, …) are the
// server's deployment decision and are rejected client-side. The
// repair-or-reject contract extends the ABFT over the client↔server wire:
// payloads are block-checksummed in both directions, a corrupted element is
// located and repaired on receipt (counted in the returned Report), and
// anything beyond repair capability — wire or transform — returns as an
// explicit error frame (ErrUncorrectable), never as a silently wrong
// spectrum. The service output is bit-for-bit identical to the local
// Transform's, clean and under injected faults. A draining server
// (Shutdown, or cmd/ftserve on SIGTERM) refuses new requests with
// ErrServerUnavailable while in-flight requests complete.
//
// # Cancellation
//
// Every executor method takes a context.Context. Sequential transforms
// observe cancellation at sub-FFT boundaries; parallel transforms
// additionally poison the in-flight communicator, so ranks parked in a
// transpose receive unwind immediately. The same poison-pill broadcast
// fires when a rank exhausts its retry budget: a persistent fault on one
// rank surfaces as ErrUncorrectable instead of deadlocking its peers. A
// canceled call returns ctx.Err() with dst in an unspecified state; the
// plan itself remains usable.
//
// # One bounded execution runtime
//
// Every concurrency mechanism in the library — simulated-MPI rank fan-out,
// N-D axis-pass tile dispatch, ForwardBatch item scheduling — runs on one
// shared bounded executor with a fixed worker budget (by default one
// process-wide pool sized to GOMAXPROCS; WithWorkers or WithExecutor select
// a private or shared budget per plan). Worker goroutines are spawned
// lazily, parked when idle, and reused across calls; communicating rank
// groups are admitted atomically in FIFO order, and independent task groups
// always make progress on the calling goroutine. The result is the
// goroutine-bound guarantee: M concurrent callers queue for admission
// instead of spawning M·ranks goroutines, so dispatch adds at most the
// worker budget plus a small constant to the process — provided WithRanks
// stays within the budget (an oversized rank gang runs its surplus on
// transient goroutines, since co-scheduling is a correctness requirement).
// Every task runs with panic containment and receives the caller's context.
// Executor choice never changes arithmetic: outputs are bit-identical
// across budgets.
//
// # Plan once, execute many
//
// Like FFTW, plans front-load all derived state: FFT sub-plans, twiddle
// tables, checksum weight vectors, the message-passing world and every
// per-rank workspace buffer are built at New time and reused by every
// transform. Steady-state sequential transforms perform zero allocations;
// parallel transforms allocate only the O(ranks) dispatch cost of one rank
// task group on pooled workers.
//
// # Autotuning and wisdom
//
// Several plan choices are made by analytic cost models that can miss on a
// given host. WithTuning(TuneMeasured) replaces them with FFTW-style
// measurement: at plan build — never during execution — New and NewReal time
// the legal candidates for each tunable choice and install the fastest:
//
//	kernel engine      flat vs recursive, power-of-two sub-plans only
//	Bluestein conv     the {1,3,5,9,15}·2^k ladder ≥ 2n−1 (ConvCandidates)
//	nd tile size       the BenchmarkTileSize ladder (nd.TileLadder)
//	ForwardBatch       epoch-pipelining window 1, 2 or 4 (or WithBatchWindow)
//
// Winners are recorded in a process-wide bounded wisdom table keyed by
// (knob, size, dims, scheme, real/complex): later builds of the same
// geometry hit the table and skip the sweeps, so a wisdom-hit plan build
// costs the same as the default. ExportWisdom serializes the table as a
// versioned, checksummed blob and ImportWisdom merges one back — the fleet
// workflow is tune once on a canary host, ship the file, import everywhere
// (cmd/ftfft -tune -wisdom writes it; cmd/ftserve -wisdom loads it).
//
// The determinism contract: wisdom stores *choices*, never timings, and
// every candidate computes a correct transform — so timing noise only ever
// picks which deterministic plan wins. Two plans built from the same wisdom
// make identical choices and produce bit-identical outputs, locally or
// served. A server applies wisdom on plan-cache misses but never measures
// inside a request, and its plan cache keys on the wisdom epoch, so an
// import rotates out plans tuned under the old table instead of mixing them.
//
// Migration: the default is TuneEstimate — the analytic heuristics,
// bit-identical to plans built before tuning existed. Nothing measures,
// nothing consults wisdom, unless a plan opts in.
//
// Transforms are safe for concurrent use by multiple goroutines.
// Workspaces are per-call: every executor keeps a pool of execution
// contexts, and each in-flight call draws its own, so concurrent calls on
// one plan never share mutable state. A parallel context is returned to
// the pool only after a clean transform; contexts that observed an
// uncorrectable fault or an abort are discarded rather than reused.
package ftfft
