package ftfft_test

import (
	"bytes"
	"context"
	"testing"

	"ftfft"
	"ftfft/internal/workload"
)

// forwardOnce builds a plan and runs one forward transform of src.
func forwardOnce(t *testing.T, n int, src []complex128, opts ...ftfft.Option) []complex128 {
	t.Helper()
	tr, err := ftfft.New(n, opts...)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]complex128, n)
	if _, err := tr.Forward(context.Background(), dst, src); err != nil {
		t.Fatal(err)
	}
	return dst
}

// TestTuningEstimateBitIdentical pins the migration contract: the default
// TuneEstimate mode — spelled out or omitted — is the exact pre-tuning
// planner. No knob hooks may perturb the heuristics' choices.
func TestTuningEstimateBitIdentical(t *testing.T) {
	for _, n := range []int{256, 1024, 4099} {
		prot := ftfft.OnlineABFTMemory
		if n == 4099 {
			prot = ftfft.None // prime size: the online scheme needs a composite
		}
		src := workload.Uniform(int64(n), n)
		plain := forwardOnce(t, n, src, ftfft.WithProtection(prot))
		spelled := forwardOnce(t, n, src,
			ftfft.WithProtection(prot), ftfft.WithTuning(ftfft.TuneEstimate))
		for i := range plain {
			if plain[i] != spelled[i] {
				t.Fatalf("n=%d: explicit TuneEstimate diverged from default at bin %d", n, i)
			}
		}
	}
}

// TestTuningDeterminism is the tentpole's honesty gate: two TuneMeasured
// builds under the same wisdom make the same choices and produce
// bit-identical spectra. Run A measures from an empty table and exports;
// run B imports that wisdom and must hit it everywhere (no re-measurement
// changes the outcome). Covers the kernel knob (pow2), the Bluestein
// convolution knob (n=4099), and the nd tile knob (2-D).
func TestTuningDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs plan-build timing sweeps")
	}
	type geom struct {
		name string
		n    int
		opts []ftfft.Option
	}
	geoms := []geom{
		{"n1024-kernel", 1024, []ftfft.Option{ftfft.WithProtection(ftfft.OnlineABFTMemory)}},
		{"n4099-bluestein", 4099, []ftfft.Option{ftfft.WithProtection(ftfft.None)}},
		{"dims64x64-tile", 64 * 64, []ftfft.Option{ftfft.WithDims(64, 64)}},
	}

	ftfft.ForgetWisdom()
	t.Cleanup(ftfft.ForgetWisdom)
	first := make(map[string][]complex128, len(geoms))
	for _, g := range geoms {
		src := workload.Uniform(int64(g.n), g.n)
		opts := append([]ftfft.Option{ftfft.WithTuning(ftfft.TuneMeasured)}, g.opts...)
		first[g.name] = forwardOnce(t, g.n, src, opts...)
	}
	wisdom := ftfft.ExportWisdom()
	if len(wisdom) == 0 {
		t.Fatal("measured runs recorded no wisdom")
	}

	ftfft.ForgetWisdom()
	if err := ftfft.ImportWisdom(wisdom); err != nil {
		t.Fatal(err)
	}
	for _, g := range geoms {
		src := workload.Uniform(int64(g.n), g.n)
		opts := append([]ftfft.Option{ftfft.WithTuning(ftfft.TuneMeasured)}, g.opts...)
		again := forwardOnce(t, g.n, src, opts...)
		for i := range again {
			if again[i] != first[g.name][i] {
				t.Fatalf("%s: wisdom-replayed build diverged at bin %d", g.name, i)
			}
		}
	}
	// Replaying from hits must not have re-measured new entries into the
	// table: the re-export is byte-identical to the imported blob.
	if !bytes.Equal(ftfft.ExportWisdom(), wisdom) {
		t.Fatal("wisdom-hit builds mutated the table (re-measured on a hit)")
	}
}

// TestTunedServeBitIdentical extends the serve acceptance gate to tuned
// plans: a server sharing the tuner's wisdom table must return bit-for-bit
// the spectrum a local TuneMeasured plan (hitting the same wisdom) computes.
// The server never measures — it applies the imported choices on each plan
// cache miss.
func TestTunedServeBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs plan-build timing sweeps")
	}
	const n = 1024
	ctx := context.Background()
	src := workload.Uniform(7, n)

	ftfft.ForgetWisdom()
	t.Cleanup(ftfft.ForgetWisdom)
	want := forwardOnce(t, n, src,
		ftfft.WithProtection(ftfft.OnlineABFTMemory), ftfft.WithTuning(ftfft.TuneMeasured))
	wisdom := ftfft.ExportWisdom()
	ftfft.ForgetWisdom()
	if err := ftfft.ImportWisdom(wisdom); err != nil {
		t.Fatal(err)
	}

	_, network, addr := startServe(t, ftfft.ServerConfig{})
	c := dialServe(t, network, addr)
	got := make([]complex128, n)
	if _, err := c.Forward(ctx, got, src, ftfft.WithProtection(ftfft.OnlineABFTMemory)); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("served tuned spectrum diverged from local at bin %d: %v vs %v", i, got[i], want[i])
		}
	}

	// Clients cannot steer tuning remotely: the plan-side options are
	// rejected at the client boundary.
	if _, err := c.Forward(ctx, got, src, ftfft.WithTuning(ftfft.TuneMeasured)); err == nil {
		t.Fatal("client Forward accepted WithTuning")
	}
	if _, err := c.Forward(ctx, got, src, ftfft.WithBatchWindow(2)); err == nil {
		t.Fatal("client Forward accepted WithBatchWindow")
	}
}

// TestBatchWindowPinned pins the WithBatchWindow contract on a parallel
// plan: every legal window produces the same bits as the heuristic default,
// because the window only changes pipelining depth, never arithmetic.
func TestBatchWindowPinned(t *testing.T) {
	const n, ranks, items = 256, 4, 6
	ctx := context.Background()
	src := make([][]complex128, items)
	for i := range src {
		src[i] = workload.Uniform(int64(100+i), n)
	}
	batchOut := func(opts ...ftfft.Option) [][]complex128 {
		t.Helper()
		opts = append([]ftfft.Option{ftfft.WithRanks(ranks), ftfft.WithProtection(ftfft.OnlineABFTMemory)}, opts...)
		tr, err := ftfft.New(n, opts...)
		if err != nil {
			t.Fatal(err)
		}
		dst := make([][]complex128, items)
		for i := range dst {
			dst[i] = make([]complex128, n)
		}
		if _, err := tr.ForwardBatch(ctx, dst, src); err != nil {
			t.Fatal(err)
		}
		return dst
	}
	want := batchOut()
	for _, w := range []int{1, 2, 4} {
		got := batchOut(ftfft.WithBatchWindow(w))
		for i := range got {
			for j := range got[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("window %d: item %d bin %d diverged", w, i, j)
				}
			}
		}
	}

	// NewReal rejects the window with the other parallel-only options.
	if _, err := ftfft.NewReal(512, ftfft.WithBatchWindow(2)); err == nil {
		t.Fatal("NewReal accepted WithBatchWindow")
	}
}
